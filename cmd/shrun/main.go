// Command shrun executes declarative campaign spec files: JSON
// descriptions of an evaluation campaign (see docs/SPECS.md) that
// expand deterministically into experiment jobs and run on the
// parallel campaign runner with content-keyed result caching. The
// checked-in presets under examples/specs/ reproduce the paper's
// artifacts — figure6-quick.json regenerates Figure 6 bit-for-bit —
// and any other spec file evaluates whatever architecture, topology,
// routing, traffic, and load cross-product it declares.
//
// For every sweep of every spec, shrun prints a result table on
// stdout and a campaign-statistics line (jobs, cache hits, compute
// time, simulated work) on stderr. -validate checks spec files
// against the topology/routing/pattern registries without running
// anything — CI runs it over examples/specs/ so checked-in specs
// cannot rot. -server URL submits the specs to a running shserved
// campaign service (see docs/API.md) instead of simulating locally:
// the output is the same tables or CSV, computed on the service's
// shared worker pool and cache.
//
// Specs naming the "adaptive" quality tier run under adaptive
// simulation control (early-verdict probes inside the quick tier's
// budgets; figure6-adaptive.json is the checked-in example).
// -cpuprofile/-memprofile write pprof profiles around campaign
// execution, for hunting down where a slow campaign spends its time;
// -metrics dumps the campaign's Prometheus series (simulator, runner,
// cache) to stderr on exit. Both apply to local runs only — with
// -server the simulation happens inside shserved, so profile and
// scrape the service instead (shserved -pprof, GET /metrics).
//
// Examples:
//
//	shrun examples/specs/figure6-quick.json
//	shrun -jobs 8 -cache results.json -progress examples/specs/custom-96.json
//	shrun -csv examples/specs/cost-survey.json > survey.csv
//	shrun -validate examples/specs/*.json
//	shrun -cpuprofile prof.cpu examples/specs/figure6-adaptive.json
//	shrun -server http://localhost:8080 examples/specs/figure6-quick.json
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/report"
	"sparsehamming/internal/spec"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "validate the spec files and exit without running")
		jobs     = flag.Int("jobs", 0, "parallel simulation workers (0 = all cores)")
		cacheP   = flag.String("cache", "", "JSON file memoizing results across invocations")
		progress = flag.Bool("progress", false, "log per-job progress to stderr")
		csv      = flag.Bool("csv", false, "emit one flat CSV instead of per-sweep tables")
		server   = flag.String("server", "", "submit to a shserved campaign service at this base URL instead of running locally")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the campaign to this file")
		metrics  = flag.Bool("metrics", false, "dump Prometheus metrics for the campaign to stderr on exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shrun [flags] spec.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	specs := make([]*spec.Spec, 0, flag.NArg())
	ok := true
	for _, path := range flag.Args() {
		s, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrun:", err)
			ok = false
			continue
		}
		specs = append(specs, s)
		if *validate {
			n := 0
			groups, err := s.ExpandSweeps()
			if err != nil {
				fmt.Fprintln(os.Stderr, "shrun:", err)
				ok = false
				continue
			}
			for _, g := range groups {
				n += len(g)
			}
			fmt.Printf("%s: ok (%q, %d sweeps, %d jobs)\n", path, s.Name, len(s.Sweeps), n)
		}
	}
	if !ok {
		os.Exit(1)
	}
	if *validate {
		return
	}

	if *server != "" {
		if *jobs != 0 || *cacheP != "" {
			fmt.Fprintln(os.Stderr, "shrun: note: -jobs and -cache configure local runs; with -server the service's shared pool and cache apply")
		}
		if *cpuProf != "" || *memProf != "" {
			fmt.Fprintln(os.Stderr, "shrun: note: -cpuprofile/-memprofile profile local runs; with -server the simulation happens in the service — profile it with shserved -pprof and GET /debug/pprof/profile (docs/API.md)")
		}
		if *metrics {
			fmt.Fprintln(os.Stderr, "shrun: note: -metrics dumps local campaign metrics; with -server scrape the service's GET /metrics instead")
		}
		client := &remote{base: *server, progress: *progress}
		if *csv {
			fmt.Println(report.CSVHeader)
		}
		for _, s := range specs {
			if err := client.run(s, *csv); err != nil {
				fmt.Fprintln(os.Stderr, "shrun:", err)
				os.Exit(1)
			}
		}
		return
	}

	runner := noc.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shrun", *cacheP, runner, *progress)
	prof := cli.StartProfiles("shrun", *cpuProf, *memProf)
	if *csv {
		fmt.Println(report.CSVHeader)
	}
	for _, s := range specs {
		if err := run(s, runner, *csv); err != nil {
			prof.Stop()
			camp.Close()
			fmt.Fprintln(os.Stderr, "shrun:", err)
			os.Exit(1)
		}
	}
	if *metrics {
		cli.DumpMetrics(os.Stderr, runner)
	}
	prof.Stop()
	camp.Close()
}

// load parses and validates one spec file.
func load(path string) (*spec.Spec, error) {
	s, err := spec.ParseFile(path)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// run executes one spec as a single campaign batch (the worker pool
// sees every sweep's jobs at once) and prints per-sweep results.
func run(s *spec.Spec, runner *exp.Runner, csv bool) error {
	groups, err := s.ExpandSweeps()
	if err != nil {
		return err
	}
	labels := s.Labels()
	pt := noc.NewPanelTracker(labels)
	var all []exp.Job
	for pi, g := range groups {
		for _, j := range g {
			pt.Add(j, pi)
		}
		all = append(all, g...)
	}

	pt.Attach(runner)
	defer pt.Detach()
	results, _, err := runner.Run(all)
	if err != nil {
		return fmt.Errorf("spec %q: %w", s.Name, err)
	}
	for k, res := range results {
		pt.AddResult(all[k], res)
	}

	off := 0
	for pi, g := range groups {
		sweepResults := results[off : off+len(g)]
		off += len(g)
		if csv {
			report.WriteCSVRows(os.Stdout, labels[pi], g, sweepResults)
		} else {
			report.WriteSweepTable(os.Stdout, s, pi, g, sweepResults)
		}
		fmt.Fprintf(os.Stderr, "shrun: %s: %s: %s\n", s.Name, labels[pi], pt.Stats[pi])
	}
	return nil
}
