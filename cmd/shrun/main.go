// Command shrun executes declarative campaign spec files: JSON
// descriptions of an evaluation campaign (see docs/SPECS.md) that
// expand deterministically into experiment jobs and run on the
// parallel campaign runner with content-keyed result caching. The
// checked-in presets under examples/specs/ reproduce the paper's
// artifacts — figure6-quick.json regenerates Figure 6 bit-for-bit —
// and any other spec file evaluates whatever architecture, topology,
// routing, traffic, and load cross-product it declares.
//
// For every sweep of every spec, shrun prints a result table on
// stdout and a campaign-statistics line (jobs, cache hits, compute
// time, simulated work) on stderr. -validate checks spec files
// against the topology/routing/pattern registries without running
// anything — CI runs it over examples/specs/ so checked-in specs
// cannot rot.
//
// Examples:
//
//	shrun examples/specs/figure6-quick.json
//	shrun -jobs 8 -cache results.json -progress examples/specs/custom-96.json
//	shrun -csv examples/specs/cost-survey.json > survey.csv
//	shrun -validate examples/specs/*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/spec"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "validate the spec files and exit without running")
		jobs     = flag.Int("jobs", 0, "parallel simulation workers (0 = all cores)")
		cacheP   = flag.String("cache", "", "JSON file memoizing results across invocations")
		progress = flag.Bool("progress", false, "log per-job progress to stderr")
		csv      = flag.Bool("csv", false, "emit one flat CSV instead of per-sweep tables")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shrun [flags] spec.json...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	specs := make([]*spec.Spec, 0, flag.NArg())
	ok := true
	for _, path := range flag.Args() {
		s, err := load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "shrun:", err)
			ok = false
			continue
		}
		specs = append(specs, s)
		if *validate {
			n := 0
			groups, err := s.ExpandSweeps()
			if err != nil {
				fmt.Fprintln(os.Stderr, "shrun:", err)
				ok = false
				continue
			}
			for _, g := range groups {
				n += len(g)
			}
			fmt.Printf("%s: ok (%q, %d sweeps, %d jobs)\n", path, s.Name, len(s.Sweeps), n)
		}
	}
	if !ok {
		os.Exit(1)
	}
	if *validate {
		return
	}

	runner := noc.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shrun", *cacheP, runner, *progress)
	if *csv {
		fmt.Println(csvHeader)
	}
	for _, s := range specs {
		if err := run(s, runner, *csv); err != nil {
			camp.Close()
			fmt.Fprintln(os.Stderr, "shrun:", err)
			os.Exit(1)
		}
	}
	camp.Close()
}

// load parses and validates one spec file.
func load(path string) (*spec.Spec, error) {
	s, err := spec.ParseFile(path)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// run executes one spec as a single campaign batch (the worker pool
// sees every sweep's jobs at once) and prints per-sweep results.
func run(s *spec.Spec, runner *exp.Runner, csv bool) error {
	groups, err := s.ExpandSweeps()
	if err != nil {
		return err
	}
	labels := s.Labels()
	pt := noc.NewPanelTracker(labels)
	var all []exp.Job
	for pi, g := range groups {
		for _, j := range g {
			pt.Add(j, pi)
		}
		all = append(all, g...)
	}

	pt.Attach(runner)
	defer pt.Detach()
	results, _, err := runner.Run(all)
	if err != nil {
		return fmt.Errorf("spec %q: %w", s.Name, err)
	}
	for k, res := range results {
		pt.AddResult(all[k], res)
	}

	off := 0
	for pi, g := range groups {
		sweepResults := results[off : off+len(g)]
		off += len(g)
		if csv {
			printCSV(labels[pi], g, sweepResults)
		} else {
			printSweep(s, pi, labels[pi], g, sweepResults)
		}
		fmt.Fprintf(os.Stderr, "shrun: %s: %s: %s\n", s.Name, labels[pi], pt.Stats[pi])
	}
	return nil
}

// printSweep renders one sweep as a markdown table keyed by mode.
func printSweep(s *spec.Spec, pi int, label string, jobs []exp.Job, results []*exp.Result) {
	sw := s.Sweeps[pi]
	grid := ""
	if arch, err := noc.ArchForJob(jobs[0]); err == nil {
		grid = fmt.Sprintf(", %dx%d tiles", arch.Rows, arch.Cols)
	}
	mode := sw.Mode
	if mode == "" {
		mode = string(exp.ModePredict)
	}
	fmt.Printf("## %s / %s: scenario %s%s, mode %s\n\n", s.Name, label, sw.Arch.Scenario, grid, mode)
	var b strings.Builder
	switch exp.Mode(mode) {
	case exp.ModeLoad:
		fmt.Fprintf(&b, "| topology | params | routing | pattern | offered | accepted | avg lat | p99 lat | delivered |\n")
		fmt.Fprintf(&b, "|---|---|---|---|---:|---:|---:|---:|---:|\n")
		for k, r := range results {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %.3f | %.1f | %.1f | %.3f |\n",
				r.Topology, r.Params, r.RoutingName, patternName(jobs[k]),
				r.OfferedRate, r.AcceptedRate, r.AvgPacketLatency, r.P99PacketLatency, r.DeliveredFraction)
		}
	case exp.ModeCost:
		fmt.Fprintf(&b, "| topology | params | radix | diam | avg hops | area ovh %% | NoC power W |\n")
		fmt.Fprintf(&b, "|---|---|---:|---:|---:|---:|---:|\n")
		for _, r := range results {
			fmt.Fprintf(&b, "| %s | %s | %d | %d | %.2f | %.1f | %.2f |\n",
				r.Topology, r.Params, r.RouterRadix, r.Diameter, r.AvgHops,
				r.AreaOverheadPct, r.NoCPowerW)
		}
	default: // predict
		fmt.Fprintf(&b, "| topology | params | routing | area ovh %% | NoC power W | zero-load lat | saturation %% |\n")
		fmt.Fprintf(&b, "|---|---|---|---:|---:|---:|---:|\n")
		for _, r := range results {
			fmt.Fprintf(&b, "| %s | %s | %s | %.1f | %.2f | %.1f | %.1f |\n",
				r.Topology, r.Params, r.RoutingName,
				r.AreaOverheadPct, r.NoCPowerW, r.ZeroLoadLatency, r.SaturationPct)
		}
	}
	fmt.Print(b.String())
	fmt.Println()
}

// csvHeader is the flat-CSV column list covering all three modes.
const csvHeader = "spec_sweep,mode,scenario,topology,params,routing,pattern,quality,seed,load," +
	"radix,diameter,avg_hops,area_overhead_pct,noc_power_w,zero_load_latency,saturation_pct," +
	"offered,accepted,avg_latency,p99_latency,delivered_fraction"

// printCSV renders one sweep's rows of the flat CSV.
func printCSV(label string, jobs []exp.Job, results []*exp.Result) {
	for k, r := range results {
		j := jobs[k]
		fmt.Printf("%q,%s,%s,%s,%q,%s,%s,%s,%d,%g,%d,%d,%.4f,%.2f,%.3f,%.2f,%.2f,%.3f,%.3f,%.2f,%.2f,%.4f\n",
			label, j.Mode, j.Scenario, r.Topology, r.Params, r.RoutingName, patternName(j),
			qualityName(j), j.Seed, j.Load,
			r.RouterRadix, r.Diameter, r.AvgHops, r.AreaOverheadPct, r.NoCPowerW,
			r.ZeroLoadLatency, r.SaturationPct,
			r.OfferedRate, r.AcceptedRate, r.AvgPacketLatency, r.P99PacketLatency, r.DeliveredFraction)
	}
}

// patternName renders a job's traffic pattern with the uniform
// default spelled out.
func patternName(j exp.Job) string {
	if j.Pattern == "" {
		return "uniform"
	}
	return j.Pattern
}

// qualityName renders a job's quality with the quick default spelled
// out.
func qualityName(j exp.Job) string {
	if j.Quality == "" {
		return "quick"
	}
	return j.Quality
}
