// Command shperf inspects the benchmark trajectory BENCH_sim.json
// (see internal/perf): -check compares the two newest entries of
// every benchmark and prints a warning line for each whose ns/op
// regressed beyond the threshold. The warnings use the GitHub Actions
// annotation syntax (::warning ::...), so the CI bench job surfaces
// them on the run without failing it — perf history is advisory, not
// a gate, because container timing noise would otherwise flake
// unrelated PRs. -fresh restricts the comparison to benchmarks whose
// newest entry is recent (CI passes -fresh 1h so only the benches
// the smoke run just refreshed are compared; stale pairs recorded in
// other sessions never warn on unrelated runs).
//
// -check also verifies the repository's standing metric floors
// (perf.BuiltinFloors) against each floored benchmark's newest entry
// — e.g. the surrogate DSE's simulations-saved factor and frontier
// recall — and warns on any metric below its floor.
//
// Examples:
//
//	shperf -check
//	shperf -check -fresh 1h
//	shperf -check -threshold 10 -file BENCH_sim.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sparsehamming/internal/perf"
)

func main() {
	var (
		file      = flag.String("file", perf.DefaultPath(), "benchmark trajectory file")
		check     = flag.Bool("check", false, "warn when the newest entry of a bench regressed vs the previous one")
		threshold = flag.Float64("threshold", 15, "regression threshold in percent")
		fresh     = flag.Duration("fresh", 0, "only compare benches whose newest entry is younger than this (0 = all)")
	)
	flag.Parse()
	if !*check {
		flag.Usage()
		os.Exit(2)
	}
	entries, err := perf.Load(*file)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shperf:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Printf("%s: no entries\n", *file)
		return
	}
	var cutoff time.Time
	if *fresh > 0 {
		cutoff = time.Now().Add(-*fresh)
	}
	regs := perf.FreshRegressions(entries, *threshold, cutoff)
	for _, d := range regs {
		fmt.Printf("::warning ::bench %s regressed %.1f%% (%s -> %s per op)\n",
			d.Bench, d.Pct, time.Duration(d.OldNs).Round(time.Microsecond),
			time.Duration(d.NewNs).Round(time.Microsecond))
	}
	if len(regs) == 0 {
		fmt.Printf("%s: no ns/op regressions beyond %.0f%%\n", *file, *threshold)
	}
	viol := perf.FloorViolations(entries, perf.BuiltinFloors(), cutoff)
	for _, v := range viol {
		fmt.Printf("::warning ::bench %s metric %s = %g below floor %g\n",
			v.Bench, v.Metric, v.Got, v.Min)
	}
	if len(viol) == 0 {
		fmt.Printf("%s: no metric-floor violations\n", *file)
	}
}
