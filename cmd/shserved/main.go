// Command shserved is the campaign service: a long-running HTTP
// server that accepts the same declarative campaign spec files
// cmd/shrun executes (see docs/SPECS.md), runs them on one shared
// parallel runner with one shared content-keyed result cache, and
// serves status, live progress (Server-Sent Events), and results
// (JSON or the exact CSV shrun prints). Overlapping submissions from
// any number of clients dedupe to zero extra simulation: finished
// work is answered from the cache, and work another campaign is
// computing right now is joined in flight.
//
// The HTTP API is documented endpoint by endpoint in docs/API.md.
// Submitted specs may name any registered quality tier, including
// "adaptive" (adaptive simulation control: early-verdict probes
// inside the quick tier's budgets, >=2x cheaper campaigns with
// metrics within ~2%); GET /v1/registry lists the tiers.
//
// The service is observable end to end: GET /metrics exposes
// Prometheus series for the simulator, runner, cache, and HTTP
// layers; ?debug=trace on a results fetch returns per-job execution
// traces; -pprof mounts net/http/pprof for live CPU/heap profiling
// (the supported way to profile campaigns running in the service);
// and -log-level tunes the structured campaign-lifecycle logs on
// stderr.
//
// Examples:
//
//	shserved -addr :8080 -cache results.json
//	curl -s -X POST --data-binary @examples/specs/figure6-quick.json localhost:8080/v1/campaigns
//	curl -s localhost:8080/v1/campaigns/c1-00000000/results?format=csv
//	shrun -server http://localhost:8080 examples/specs/figure6-quick.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/obs"
	"sparsehamming/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		jobs      = flag.Int("jobs", 0, "parallel simulation workers shared by all campaigns (0 = all cores)")
		cacheP    = flag.String("cache", "", "JSON file persisting the shared result cache across restarts")
		campaigns = flag.Int("campaigns", 4, "campaigns executed concurrently (simulation parallelism is still bounded by -jobs)")
		queue     = flag.Int("queue", 256, "submission queue depth; a full queue rejects with 503")
		progress  = flag.Bool("progress", false, "log per-job progress to stderr")
		pprofF    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (profile campaigns in the service; see docs/API.md)")
		logLevel  = flag.String("log-level", "info", "structured-log threshold: debug|info|warn|error")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: shserved [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 0 {
		flag.Usage()
		os.Exit(2)
	}

	logger, lerr := obs.NewLogger(os.Stderr, *logLevel)
	if lerr != nil {
		fmt.Fprintln(os.Stderr, "shserved:", lerr)
		os.Exit(2)
	}
	hub := obs.NewHub()
	hub.Log = logger

	runner := noc.NewObservedRunner(*jobs, nil, hub)
	camp := cli.StartCampaign("shserved", *cacheP, runner, *progress)
	if runner.Cache != nil {
		// StartCampaign attached the cache after the runner's metrics
		// were registered; re-register so the sh_cache_* series appear
		// (Func re-registration replaces samplers in place).
		noc.RegisterMetrics(hub.Metrics, runner, runner.Cache)
	}
	srv := serve.New(serve.Config{
		Runner:      runner,
		Executors:   *campaigns,
		QueueDepth:  *queue,
		Obs:         hub,
		EnablePprof: *pprofF,
		OnCampaignFinished: func(c *serve.Campaign) {
			snap := c.Snapshot()
			fmt.Fprintf(os.Stderr, "shserved: campaign %s (%s): %s\n", c.ID, snap.Name, snap.Status)
			if runner.Cache != nil {
				if err := runner.Cache.Save(); err != nil {
					fmt.Fprintf(os.Stderr, "shserved: warning: %v\n", err)
				}
			}
		},
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "shserved: listening on %s\n", *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	var err error
	select {
	case err = <-done:
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "shserved: %v: shutting down\n", s)
		// Bounded drain: long-lived SSE streams would otherwise keep
		// Shutdown waiting forever, so force-close them after the
		// grace period.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if httpSrv.Shutdown(ctx) != nil {
			httpSrv.Close()
		}
		cancel()
		<-done
	}
	srv.Close()
	camp.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "shserved:", err)
		os.Exit(1)
	}
}
