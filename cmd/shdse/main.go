// Command shdse exhaustively explores the sparse Hamming graph design
// space for a grid (all 2^(R+C-4) configurations) with the fast cost
// model and prints the Pareto frontier of (area overhead, average
// hops), or the full point cloud as CSV.
//
// The enumeration runs as a parallel experiment campaign: one
// cost-model job per configuration on a worker pool (-jobs), with an
// optional on-disk result cache (-cache) so a repeated exploration of
// the same grid recomputes nothing.
//
// Examples:
//
//	shdse -rows 6 -cols 6
//	shdse -rows 5 -cols 8 -budget 30 -jobs 8
//	shdse -rows 6 -cols 6 -cache dse.json -csv > points.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/dse"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		rows   = flag.Int("rows", 6, "tile grid rows")
		cols   = flag.Int("cols", 6, "tile grid columns")
		budget = flag.Float64("budget", 40, "area-overhead budget in percent for the -best report")
		csv    = flag.Bool("csv", false, "emit all points as CSV")
		limit  = flag.Int("limit", 1<<16, "maximum number of configurations to enumerate")
		jobs   = flag.Int("jobs", 0, "parallel evaluation workers (0 = all cores)")
		cacheP = flag.String("cache", "", "JSON file memoizing results across invocations")
	)
	flag.Parse()

	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = *rows, *cols

	runner := dse.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shdse", *cacheP, runner, false)

	points, err := dse.ExploreWith(arch, *limit, runner)
	camp.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shdse:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(dse.CSV(points))
		return
	}
	fmt.Printf("%d configurations on %dx%d\n\n", len(points), *rows, *cols)
	fmt.Println("Pareto frontier:")
	for _, p := range dse.Frontier(points) {
		fmt.Printf("  %-28s overhead %5.1f%%  avg hops %.3f  diameter %d\n",
			p.Params.String(), p.AreaOverheadPct, p.AvgHops, p.Diameter)
	}
	if best, ok := dse.Best(points, *budget); ok {
		fmt.Printf("\nbest within %.0f%%: %s (%.1f%%, %.3f hops)\n",
			*budget, best.Params.String(), best.AreaOverheadPct, best.AvgHops)
	} else {
		fmt.Printf("\nno configuration within %.0f%%\n", *budget)
	}
}
