// Command shdse exhaustively explores the sparse Hamming graph design
// space for a grid (all 2^(R+C-4) configurations) with the fast cost
// model and prints the Pareto frontier of (area overhead, average
// hops), or the full point cloud as CSV.
//
// The enumeration runs as a parallel experiment campaign: one
// cost-model job per configuration on a worker pool (-jobs), with an
// optional on-disk result cache (-cache) so a repeated exploration of
// the same grid recomputes nothing.
//
// With -simulate the exploration is two-stage and surrogate-guided:
// stage 1 scores the full space with the closed-form surrogate
// (cost model + analytic zero-load latency and saturation bound),
// stage 2 cycle-accurately simulates only the surrogate-predicted
// Pareto band (-band percent of slack around the frontier) and prints
// the simulation-validated frontier plus a fidelity report.
// -replicates averages each simulated configuration over several
// seeds, washing out the per-seed quantization of the saturation
// search. -validate additionally simulates every configuration
// (affordable only on small grids) and reports the band's frontier
// recall against that exhaustive ground truth.
//
// Examples:
//
//	shdse -rows 6 -cols 6
//	shdse -rows 5 -cols 8 -budget 30 -jobs 8
//	shdse -rows 6 -cols 6 -cache dse.json -csv > points.csv
//	shdse -rows 6 -cols 6 -simulate -band 10 -cache dse.json
//	shdse -rows 4 -cols 4 -simulate -validate -replicates 3
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/dse"
	"sparsehamming/internal/exp"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		rows     = flag.Int("rows", 6, "tile grid rows")
		cols     = flag.Int("cols", 6, "tile grid columns")
		budget   = flag.Float64("budget", 40, "area-overhead budget in percent for the -best report")
		csv      = flag.Bool("csv", false, "emit all points as CSV")
		limit    = flag.Int("limit", 1<<16, "maximum number of configurations to enumerate")
		jobs     = flag.Int("jobs", 0, "parallel evaluation workers (0 = all cores)")
		cacheP   = flag.String("cache", "", "JSON file memoizing results across invocations")
		simulate = flag.Bool("simulate", false, "surrogate-guided two-stage exploration: simulate the surrogate Pareto band")
		band     = flag.Float64("band", dse.DefaultSlackPct, "Pareto-band slack margin in percent for -simulate (0 = frontier only)")
		validate = flag.Bool("validate", false, "simulate every configuration for ground truth and report the band's frontier recall (implies -simulate)")
		reps     = flag.Int("replicates", 1, "simulation seeds averaged per simulated configuration")
	)
	flag.Parse()

	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = *rows, *cols

	if *simulate || *validate {
		exploreSurrogate(arch, *limit, *band, *reps, *jobs, *cacheP, *csv, *validate)
		return
	}

	runner := dse.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shdse", *cacheP, runner, false)

	points, err := dse.ExploreWith(arch, *limit, runner)
	camp.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shdse:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(dse.CSV(points))
		return
	}
	fmt.Printf("%d configurations on %dx%d\n\n", len(points), *rows, *cols)
	fmt.Println("Pareto frontier:")
	for _, p := range dse.Frontier(points) {
		fmt.Printf("  %-28s overhead %5.1f%%  avg hops %.3f  diameter %d\n",
			p.Params.String(), p.AreaOverheadPct, p.AvgHops, p.Diameter)
	}
	if best, ok := dse.Best(points, *budget); ok {
		fmt.Printf("\nbest within %.0f%%: %s (%.1f%%, %.3f hops)\n",
			*budget, best.Params.String(), best.AreaOverheadPct, best.AvgHops)
	} else {
		fmt.Printf("\nno configuration within %.0f%%\n", *budget)
	}
}

// exploreSurrogate runs the two-stage surrogate-guided exploration on
// the full prediction toolchain's runner (stage 2 needs the
// simulator).
func exploreSurrogate(arch *tech.Arch, limit int, band float64, reps, jobs int, cacheP string, csv, validate bool) {
	runner := noc.NewRunner(jobs, nil)
	camp := cli.StartCampaign("shdse", cacheP, runner, false)

	ex, err := dse.ExploreSurrogate(arch, dse.Options{
		MaxConfigs: limit,
		SlackPct:   band,
		Replicates: reps,
		Simulate:   true,
		Validate:   validate,
	}, runner)
	camp.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "shdse:", err)
		os.Exit(1)
	}
	if csv {
		fmt.Print(dse.SurrogateCSV(ex.Points))
		return
	}
	f := ex.Fidelity
	fmt.Printf("%d configurations on %dx%d; band %d (slack %.0f%%), %.1fx simulations saved\n\n",
		f.Configs, ex.Rows, ex.Cols, f.Band, ex.SlackPct, f.SimsSavedX)
	fmt.Println("simulation-validated frontier:")
	for _, p := range ex.SimFrontier() {
		fmt.Printf("  %-28s overhead %5.1f%%  saturation %s%%  zero-load %.1f\n",
			p.Params.String(), p.AreaOverheadPct,
			exp.FormatSaturation(p.SimSaturationPct, p.SimLowerBound), p.SimZeroLoad)
	}
	fmt.Printf("\nfidelity: rank correlation %.3f over %d simulated band points\n", f.RankCorr, f.Simulated)
	if f.Validated {
		fmt.Printf("frontier recall vs exhaustive simulation: %.0f%%\n", 100*f.FrontierRecall)
	}
}
