// Command shdse exhaustively explores the sparse Hamming graph design
// space for a grid (all 2^(R+C-4) configurations) with the fast cost
// model and prints the Pareto frontier of (area overhead, average
// hops), or the full point cloud as CSV.
//
// Examples:
//
//	shdse -rows 6 -cols 6
//	shdse -rows 5 -cols 8 -budget 30
//	shdse -rows 6 -cols 6 -csv > points.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/dse"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		rows   = flag.Int("rows", 6, "tile grid rows")
		cols   = flag.Int("cols", 6, "tile grid columns")
		budget = flag.Float64("budget", 40, "area-overhead budget in percent for the -best report")
		csv    = flag.Bool("csv", false, "emit all points as CSV")
		limit  = flag.Int("limit", 1<<16, "maximum number of configurations to enumerate")
	)
	flag.Parse()

	arch := tech.Scenario(tech.ScenarioA)
	arch.Rows, arch.Cols = *rows, *cols

	points, err := dse.Explore(arch, *limit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "shdse:", err)
		os.Exit(1)
	}
	if *csv {
		fmt.Print(dse.CSV(points))
		return
	}
	fmt.Printf("%d configurations on %dx%d\n\n", len(points), *rows, *cols)
	fmt.Println("Pareto frontier:")
	for _, p := range dse.Frontier(points) {
		fmt.Printf("  %-28s overhead %5.1f%%  avg hops %.3f  diameter %d\n",
			p.Params.String(), p.AreaOverheadPct, p.AvgHops, p.Diameter)
	}
	if best, ok := dse.Best(points, *budget); ok {
		fmt.Printf("\nbest within %.0f%%: %s (%.1f%%, %.3f hops)\n",
			*budget, best.Params.String(), best.AreaOverheadPct, best.AvgHops)
	} else {
		fmt.Printf("\nno configuration within %.0f%%\n", *budget)
	}
}
