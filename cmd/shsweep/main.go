// Command shsweep regenerates the paper's Figure 6: the comparison of
// all eight topologies across the four evaluation scenarios, printed
// as markdown tables or CSV. It can also print Table I (compliance)
// and Table III (MemPool toolchain validation).
//
// The sweep runs as a parallel experiment campaign: every
// scenario/topology pair is one job on a worker pool (-jobs), and
// -cache memoizes results on disk so a repeated sweep performs zero
// new simulations. Tables are byte-identical regardless of -jobs and
// -cache; the campaign report and cache statistics go to stderr.
//
// -route forces one routing algorithm onto every topology and
// -traffic swaps the uniform-random traffic for another registered
// pattern — the registry-driven ablation knobs (the result is then an
// ablation, not the paper's Figure 6 configuration).
//
// -quality selects the simulation tier: the fixed-budget "quick"
// (default) and "full" windows, or "adaptive" — quick's budgets as
// caps with early-verdict saturation probes, steady-state stopping,
// and speculative parallel bisection (>=2x faster, metrics within
// ~2%; see docs/ARCHITECTURE.md "Simulation control").
// -cpuprofile/-memprofile write pprof profiles around the campaign.
//
// Examples:
//
//	shsweep -scenario a
//	shsweep -scenario all -jobs 8 -csv > figure6.csv
//	shsweep -scenario all -cache results.json -progress
//	shsweep -scenario a -route hop-minimal -traffic transpose
//	shsweep -scenario a -quality adaptive
//	shsweep -scenario a -cpuprofile prof.cpu
//	shsweep -table3
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sparsehamming/internal/cli"
	"sparsehamming/internal/noc"
	"sparsehamming/internal/route"
	"sparsehamming/internal/sim"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		scenario = flag.String("scenario", "a", "scenario: a|b|c|d|all")
		csv      = flag.Bool("csv", false, "emit CSV instead of markdown")
		table3   = flag.Bool("table3", false, "print Table III (MemPool validation) instead")
		full     = flag.Bool("full", false, "full-length simulation windows (same as -quality full)")
		qualityF = flag.String("quality", "", "simulation quality tier: quick|full|adaptive (default quick)")
		routeF   = flag.String("route", "", "force one routing onto every topology (ablation): "+
			strings.Join(route.Names(), "|"))
		traffic = flag.String("traffic", "", "traffic pattern for the performance simulations (default uniform): "+
			strings.Join(sim.PatternNames(), "|"))
		jobs     = flag.Int("jobs", 0, "parallel simulation workers (0 = all cores)")
		cacheP   = flag.String("cache", "", "JSON file memoizing results across invocations")
		progress = flag.Bool("progress", false, "log per-job progress to stderr")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the campaign to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile after the campaign to this file")
		metrics  = flag.Bool("metrics", false, "dump Prometheus metrics for the campaign to stderr on exit")
	)
	flag.Parse()

	quality := noc.Quick
	if *full {
		quality = noc.Full
	}
	runner := noc.NewRunner(*jobs, nil)
	camp := cli.StartCampaign("shsweep", *cacheP, runner, *progress)
	prof := cli.StartProfiles("shsweep", *cpuProf, *memProf)
	fatal := func(err error) {
		prof.Stop()
		camp.Close()
		fmt.Fprintln(os.Stderr, "shsweep:", err)
		os.Exit(1)
	}
	if *qualityF != "" {
		q, err := noc.QualityByName(*qualityF)
		if err != nil {
			fatal(fmt.Errorf("-quality: %w", err))
		}
		quality = q
	}
	if !route.Registered(*routeF) {
		fatal(fmt.Errorf("-route: unknown algorithm %q (want one of %s)", *routeF, strings.Join(route.Names(), "|")))
	}
	if !sim.PatternRegistered(*traffic) {
		fatal(fmt.Errorf("-traffic: unknown pattern %q (want one of %s)", *traffic, strings.Join(sim.PatternNames(), "|")))
	}
	var opts *noc.Figure6Options
	if *routeF != "" || *traffic != "" {
		if *table3 {
			fatal(fmt.Errorf("-route/-traffic apply to the Figure 6 sweep, not -table3"))
		}
		opts = &noc.Figure6Options{Routing: *routeF, Pattern: *traffic}
	}

	if *table3 {
		rows, pred, err := noc.TableIIIWith(quality, runner)
		if err != nil {
			fatal(err)
		}
		if *metrics {
			cli.DumpMetrics(os.Stderr, runner)
		}
		prof.Stop()
		camp.Close()
		fmt.Println("Table III: MemPool toolchain validation")
		fmt.Print(noc.FormatTableIII(rows))
		fmt.Printf("\n(stand-in topology: %s, diameter %d, routing %s)\n",
			pred.Topology, pred.Diameter, pred.RoutingName)
		return
	}

	var ids []tech.ScenarioID
	if *scenario == "all" {
		ids = tech.AllScenarios()
	} else {
		ids = []tech.ScenarioID{tech.ScenarioID(*scenario)}
	}

	// One campaign batch across all requested scenarios: the worker
	// pool sees every panel's jobs at once.
	panels, stats, err := noc.Figure6Panels(ids, quality, runner, opts)
	if err != nil {
		fatal(err)
	}
	if *metrics {
		cli.DumpMetrics(os.Stderr, runner)
	}
	prof.Stop()
	camp.Close()
	for _, ps := range stats {
		fmt.Fprintf(os.Stderr, "shsweep: figure 6%s: %s\n", ps.Label, ps)
	}

	if *csv {
		fmt.Println("scenario,topology,params,area_overhead_pct,noc_power_w,zero_load_latency_cycles,saturation_pct")
	}
	for i, id := range ids {
		rows := panels[i]
		if *csv {
			// Strip the header the formatter adds; keep data lines only.
			out := noc.CSVFigure6(rows)
			fmt.Print(out[indexAfterNewline(out):])
			continue
		}
		arch := tech.Scenario(id)
		fmt.Printf("## Figure 6%s: %d tiles with %.0f MGE and %d core(s) each\n\n",
			id, arch.NumTiles(), arch.EndpointGE/1e6, arch.CoresPerTile)
		fmt.Print(noc.FormatFigure6(rows))
		fmt.Println()
	}
}

func indexAfterNewline(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return i + 1
		}
	}
	return 0
}
