// Command shsweep regenerates the paper's Figure 6: the comparison of
// all eight topologies across the four evaluation scenarios, printed
// as markdown tables or CSV. It can also print Table I (compliance)
// and Table III (MemPool toolchain validation).
//
// Examples:
//
//	shsweep -scenario a
//	shsweep -scenario all -csv > figure6.csv
//	shsweep -table3
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsehamming/internal/noc"
	"sparsehamming/internal/tech"
)

func main() {
	var (
		scenario = flag.String("scenario", "a", "scenario: a|b|c|d|all")
		csv      = flag.Bool("csv", false, "emit CSV instead of markdown")
		table3   = flag.Bool("table3", false, "print Table III (MemPool validation) instead")
		full     = flag.Bool("full", false, "full-length simulation windows")
	)
	flag.Parse()

	quality := noc.Quick
	if *full {
		quality = noc.Full
	}

	if *table3 {
		rows, pred, err := noc.TableIII(quality)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Table III: MemPool toolchain validation")
		fmt.Print(noc.FormatTableIII(rows))
		fmt.Printf("\n(stand-in topology: %s, diameter %d, routing %s)\n",
			pred.Topology, pred.Diameter, pred.RoutingName)
		return
	}

	var ids []tech.ScenarioID
	if *scenario == "all" {
		ids = tech.AllScenarios()
	} else {
		ids = []tech.ScenarioID{tech.ScenarioID(*scenario)}
	}

	if *csv {
		fmt.Println("scenario,topology,params,area_overhead_pct,noc_power_w,zero_load_latency_cycles,saturation_pct")
	}
	for _, id := range ids {
		rows, err := noc.Figure6(id, quality)
		if err != nil {
			fatal(err)
		}
		if *csv {
			// Strip the header the formatter adds; keep data lines only.
			out := noc.CSVFigure6(rows)
			fmt.Print(out[indexAfterNewline(out):])
			continue
		}
		arch := tech.Scenario(id)
		fmt.Printf("## Figure 6%s: %d tiles with %.0f MGE and %d core(s) each\n\n",
			id, arch.NumTiles(), arch.EndpointGE/1e6, arch.CoresPerTile)
		fmt.Print(noc.FormatFigure6(rows))
		fmt.Println()
	}
}

func indexAfterNewline(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return i + 1
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shsweep:", err)
	os.Exit(1)
}
